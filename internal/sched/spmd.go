package sched

import (
	"fmt"

	"parm/internal/appmodel"
)

// SPMDMakespan computes the execution time of a multithreaded SPMD
// application whose threads run concurrently on dedicated cores (paper
// §3.2: each thread executes on a dedicated core; APG edges are
// communication volumes between threads, not precedence).
//
// Each thread's time is its compute time (work + barrier overhead, inflated
// by checkpointing) plus its share of the serialized transfer time of every
// edge it terminates: communication partially overlaps computation, and
// each endpoint bears half of a transfer's cost (the sender streams while
// the receiver consumes). The makespan is the slowest thread.
func SPMDMakespan(g *appmodel.APG, cfg Config) (float64, error) {
	if cfg.Freq <= 0 {
		return 0, fmt.Errorf("sched: non-positive frequency %g", cfg.Freq)
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	over := 1.0
	if cfg.Checkpointing {
		over += CheckpointOverheadFrac(cfg.Freq)
	}
	n := g.NumTasks()
	t := make([]float64, n)
	for i, task := range g.Tasks {
		t[i] = (task.WorkCycles + cfg.SyncCyclesPerTask) / cfg.Freq * over
	}
	for _, e := range g.Edges {
		d := 0.0
		if cfg.Delay != nil {
			d = cfg.Delay(e)
		}
		if d < 0 {
			d = 0
		}
		t[e.Src] += d / 2
		t[e.Dst] += d / 2
	}
	m := 0.0
	for _, v := range t {
		if v > m {
			m = v
		}
	}
	return m, nil
}
