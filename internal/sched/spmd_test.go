package sched

import (
	"math"
	"testing"

	"parm/internal/appmodel"
	"parm/internal/pdn"
)

func TestSPMDMakespanNoEdges(t *testing.T) {
	g := &appmodel.APG{
		Bench: "flat",
		Tasks: []appmodel.Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 100},
			{ID: 1, Activity: pdn.High, WorkCycles: 400},
			{ID: 2, Activity: pdn.Low, WorkCycles: 250},
		},
	}
	m, err := SPMDMakespan(g, Config{Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	// Slowest thread bounds the app.
	if math.Abs(m-400e-9) > 1e-15 {
		t.Errorf("makespan = %g, want 400ns", m)
	}
}

func TestSPMDMakespanEdgeSharing(t *testing.T) {
	g := &appmodel.APG{
		Bench: "pair",
		Tasks: []appmodel.Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 100},
			{ID: 1, Activity: pdn.High, WorkCycles: 100},
		},
		Edges: []appmodel.Edge{{Src: 0, Dst: 1, Volume: 160}},
	}
	delay := func(appmodel.Edge) float64 { return 40e-9 }
	m, err := SPMDMakespan(g, Config{Freq: 1e9, Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	// Each endpoint bears half the 40ns transfer: 100ns + 20ns.
	if math.Abs(m-120e-9) > 1e-15 {
		t.Errorf("makespan = %g, want 120ns", m)
	}
}

func TestSPMDMakespanSyncAndCheckpoint(t *testing.T) {
	g := &appmodel.APG{
		Bench: "one",
		Tasks: []appmodel.Task{{ID: 0, Activity: pdn.High, WorkCycles: 1e6}},
	}
	plain, err := SPMDMakespan(g, Config{Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	sync, err := SPMDMakespan(g, Config{Freq: 1e9, SyncCyclesPerTask: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sync-2*plain) > 1e-15 {
		t.Errorf("sync overhead wrong: %g vs %g", sync, plain)
	}
	ckpt, err := SPMDMakespan(g, Config{Freq: 1e9, Checkpointing: true})
	if err != nil {
		t.Fatal(err)
	}
	if ckpt <= plain {
		t.Error("checkpointing did not inflate makespan")
	}
}

func TestSPMDMakespanErrors(t *testing.T) {
	g := &appmodel.APG{Bench: "x", Tasks: []appmodel.Task{{ID: 0, Activity: pdn.High, WorkCycles: 1}}}
	if _, err := SPMDMakespan(g, Config{Freq: 0}); err == nil {
		t.Error("zero frequency accepted")
	}
	bad := &appmodel.APG{Bench: "bad", Tasks: []appmodel.Task{{ID: 5, Activity: pdn.High}}}
	if _, err := SPMDMakespan(bad, Config{Freq: 1e9}); err == nil {
		t.Error("invalid graph accepted")
	}
}

// Negative comm delays are clamped.
func TestSPMDMakespanNegativeDelayClamped(t *testing.T) {
	g := appmodel.Benchmarks()[0].Graph(8)
	base, err := SPMDMakespan(g, Config{Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := SPMDMakespan(g, Config{Freq: 1e9, Delay: func(appmodel.Edge) float64 { return -1 }})
	if err != nil {
		t.Fatal(err)
	}
	if neg != base {
		t.Errorf("negative delays changed makespan: %g vs %g", neg, base)
	}
}

// Consistency with the profile estimate: with the profile-time comm model,
// the runtime SPMD makespan matches appmodel's SPMDTimeEstimate.
func TestSPMDMakespanMatchesEstimate(t *testing.T) {
	for _, bench := range appmodel.Benchmarks()[:4] {
		g := bench.Graph(16)
		freq := 2e9
		sync := bench.SyncCyclesPerTask(16)
		est := g.SPMDTimeEstimate(freq, sync)
		got, err := SPMDMakespan(g, Config{
			Freq:              freq,
			SyncCyclesPerTask: sync,
			Delay: func(e appmodel.Edge) float64 {
				return appmodel.EdgeCommCycles(e) / appmodel.RouterHz
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-est)/est > 1e-12 {
			t.Errorf("%s: runtime %g != estimate %g", bench.Name, got, est)
		}
	}
}
