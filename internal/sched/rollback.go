package sched

import (
	"math"
	"math/rand"
)

// This file is the explicit half of the checkpoint/rollback scheme the
// paper uses against residual voltage emergencies (§4.2, §4.5). The
// closed-form RollbackPenalty in edf.go charges the *expected* lost time
// per VE (restart overhead plus half a checkpoint interval); the Executor
// below instead tracks a per-application committed-progress watermark and
// charges the *actual* lost work of each injected emergency: execution
// rolls back to the last completed checkpoint, pays the restart overhead,
// and re-runs the lost span — re-paying its checkpoint overhead, since
// executed time is checkpoint-inflated. The FaultPlan supplies the
// emergencies: a seeded stochastic draw per over-threshold PSN sample, so a
// run is a single trajectory of a reproducible random process rather than a
// deterministic worst case.

// FaultPlan draws voltage-emergency occurrences for one simulation run. The
// engine consults it at every periodic PSN sample for every application
// whose domain peak exceeds the threshold; the number of emergencies is
// Poisson-distributed with the legacy closed form's mean (1 + 8·exceedance).
// Draws are a deterministic function of the seed and the call sequence, and
// the engine calls in sorted application order, so runs replay bit-identically
// for a fixed seed regardless of PSN worker count.
type FaultPlan struct {
	rng *rand.Rand
}

// NewFaultPlan returns a fault plan seeded with seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: rand.New(rand.NewSource(seed))}
}

// faultDrawCap bounds one sample's VE count: a single sampling interval has
// finitely many switching events that can cross the margin.
const faultDrawCap = 32

// Draw returns the number of voltage emergencies injected for one
// application at one sample whose domain peak exceeds the VE threshold by
// the given fraction (exceedance = peak/threshold - 1). Non-positive
// exceedance draws nothing and consumes no randomness. A zero draw at
// positive exceedance is meaningful: the noise crossed the margin but no
// in-flight computation was corrupted — the "residual VE" case the paper's
// rollback scheme exists for.
func (p *FaultPlan) Draw(exceedance float64) int {
	if exceedance <= 0 {
		return 0
	}
	lambda := 1 + 8*exceedance
	if lambda > 16 {
		lambda = 16
	}
	// Knuth's product method; lambda is small so the loop is short.
	limit := math.Exp(-lambda)
	k := 0
	prod := p.rng.Float64()
	for prod > limit && k < faultDrawCap {
		k++
		prod *= p.rng.Float64()
	}
	return k
}

// Executor tracks the checkpointed execution of one mapped application.
// Progress is measured in inflated execution seconds (the makespan from
// SPMDMakespan, which already carries the periodic checkpoint overhead);
// checkpoints complete every period of progress and advance the committed
// watermark. A voltage emergency discards everything past the watermark.
type Executor struct {
	period  float64 // checkpoint interval in inflated execution seconds
	restart float64 // per-rollback restart overhead in seconds
	total   float64 // inflated execution seconds to complete

	committed    float64 // progress at the last completed checkpoint
	attemptStart float64 // sim time the current attempt (re)started

	checkpoints int     // checkpoints committed so far
	rollbacks   int     // emergencies absorbed
	lostWorkS   float64 // progress discarded and re-executed
	restartS    float64 // restart overhead paid
}

// NewExecutor returns the execution state of an application mapped at sim
// time now whose checkpoint-inflated makespan is makespan seconds at clock
// frequency freq. A non-positive frequency or makespan yields a degenerate
// executor that completes immediately and absorbs VEs for free.
func NewExecutor(freq, makespan, now float64) *Executor {
	x := &Executor{total: makespan, attemptStart: now}
	if makespan < 0 {
		x.total = 0
	}
	if freq > 0 {
		x.period = CheckpointPeriod * (1 + CheckpointOverheadFrac(freq))
		x.restart = RollbackCycles / freq
	}
	return x
}

// CompletionTime returns the projected completion time if no further
// emergency strikes: the current attempt runs the remaining work straight
// through.
func (x *Executor) CompletionTime() float64 {
	return x.attemptStart + x.total - x.committed
}

// InjectVEs absorbs n voltage emergencies striking at sim time now and
// returns the new projected completion time. The first emergency rolls
// execution back to the last completed checkpoint, losing the work since;
// the remaining n-1 strike during the restart, before any new progress, so
// each costs only the restart overhead. Emergencies after the projected
// completion (a stale sample racing the completion event) are absorbed at
// full progress and cost only restarts.
func (x *Executor) InjectVEs(now float64, n int) float64 {
	if n <= 0 {
		return x.CompletionTime()
	}
	progress := x.committed + (now - x.attemptStart)
	if progress > x.total {
		progress = x.total
	}
	if progress < x.committed {
		progress = x.committed
	}
	watermark := x.committed
	if x.period > 0 {
		watermark = math.Floor(progress/x.period+1e-9) * x.period
		if watermark < x.committed {
			watermark = x.committed
		}
		if watermark > x.committed {
			x.checkpoints += int(math.Round((watermark - x.committed) / x.period))
		}
	} else {
		// No checkpointing possible: every emergency restarts from the last
		// committed point with nothing new committed.
		watermark = x.committed
	}
	lost := progress - watermark
	x.lostWorkS += lost
	x.restartS += float64(n) * x.restart
	x.rollbacks += n
	x.committed = watermark
	x.attemptStart = now + float64(n)*x.restart
	return x.CompletionTime()
}

// Rollbacks returns the number of emergencies absorbed so far.
func (x *Executor) Rollbacks() int { return x.rollbacks }

// Checkpoints returns the checkpoints committed so far plus those the final
// attempt takes if it runs to completion undisturbed.
func (x *Executor) Checkpoints() int {
	if x.period <= 0 {
		return x.checkpoints
	}
	return x.checkpoints + int(math.Floor((x.total-x.committed)/x.period+1e-9))
}

// LostWorkS returns the execution seconds discarded by rollbacks (work that
// was re-run, checkpoint overhead included).
func (x *Executor) LostWorkS() float64 { return x.lostWorkS }

// RestartS returns the restart overhead paid across all rollbacks.
func (x *Executor) RestartS() float64 { return x.restartS }

// DelayS returns the total completion-time delay the emergencies caused:
// discarded work plus restart overhead.
func (x *Executor) DelayS() float64 { return x.lostWorkS + x.restartS }
