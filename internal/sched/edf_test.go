package sched

import (
	"math"
	"testing"
	"testing/quick"

	"parm/internal/appmodel"
	"parm/internal/pdn"
)

// chainGraph builds a linear chain of n tasks with the given work.
func chainGraph(n int, work float64) *appmodel.APG {
	g := &appmodel.APG{Bench: "chain"}
	for i := 0; i < n; i++ {
		g.Tasks = append(g.Tasks, appmodel.Task{ID: appmodel.TaskID(i), Activity: pdn.High, WorkCycles: work})
	}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, appmodel.Edge{Src: appmodel.TaskID(i), Dst: appmodel.TaskID(i + 1), Volume: 160})
	}
	return g
}

// diamondGraph: 0 -> {1,2} -> 3 with distinct works.
func diamondGraph() *appmodel.APG {
	return &appmodel.APG{
		Bench: "diamond",
		Tasks: []appmodel.Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 100},
			{ID: 1, Activity: pdn.High, WorkCycles: 300},
			{ID: 2, Activity: pdn.Low, WorkCycles: 50},
			{ID: 3, Activity: pdn.Low, WorkCycles: 100},
		},
		Edges: []appmodel.Edge{
			{Src: 0, Dst: 1, Volume: 160}, {Src: 0, Dst: 2, Volume: 160},
			{Src: 1, Dst: 3, Volume: 160}, {Src: 2, Dst: 3, Volume: 160},
		},
	}
}

func TestScheduleChain(t *testing.T) {
	g := chainGraph(4, 100)
	res, err := Schedule(g, Config{Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 100 / 1e9
	if math.Abs(res.Makespan-want) > 1e-15 {
		t.Errorf("chain makespan = %g, want %g", res.Makespan, want)
	}
	// Dependencies respected.
	for i := 1; i < 4; i++ {
		if res.Start[i] < res.Finish[i-1] {
			t.Errorf("task %d started before predecessor finished", i)
		}
	}
}

func TestScheduleDiamondCriticalPath(t *testing.T) {
	res, err := Schedule(diamondGraph(), Config{Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	// Critical path 0 -> 1 -> 3 = 500 cycles.
	if math.Abs(res.Makespan-500e-9) > 1e-15 {
		t.Errorf("diamond makespan = %g, want 500ns", res.Makespan)
	}
}

func TestScheduleCommDelays(t *testing.T) {
	delay := func(e appmodel.Edge) float64 { return 10e-9 }
	res, err := Schedule(diamondGraph(), Config{Freq: 1e9, Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	// Two edges on the critical path add 20ns.
	if math.Abs(res.Makespan-520e-9) > 1e-15 {
		t.Errorf("makespan with delays = %g, want 520ns", res.Makespan)
	}
	// Negative delays are clamped to zero.
	neg := func(e appmodel.Edge) float64 { return -5 }
	res2, err := Schedule(diamondGraph(), Config{Freq: 1e9, Delay: neg})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Makespan-500e-9) > 1e-15 {
		t.Errorf("negative delay not clamped: %g", res2.Makespan)
	}
}

// With fewer cores than tasks, the schedule serializes and EDF priorities
// decide who runs first.
func TestScheduleLimitedCores(t *testing.T) {
	g := &appmodel.APG{
		Bench: "par",
		Tasks: []appmodel.Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 100},
			{ID: 1, Activity: pdn.High, WorkCycles: 100},
			{ID: 2, Activity: pdn.High, WorkCycles: 100},
			{ID: 3, Activity: pdn.High, WorkCycles: 100},
		},
	}
	full, err := Schedule(g, Config{Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Schedule(g, Config{Freq: 1e9, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Makespan-100e-9) > 1e-15 {
		t.Errorf("4-core makespan = %g", full.Makespan)
	}
	if math.Abs(half.Makespan-200e-9) > 1e-15 {
		t.Errorf("2-core makespan = %g", half.Makespan)
	}
	single, err := Schedule(g, Config{Freq: 1e9, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.Makespan-400e-9) > 1e-15 {
		t.Errorf("1-core makespan = %g", single.Makespan)
	}
}

// EDF ordering: with one core, the task whose successor chain is longer
// (earlier derived deadline) runs first.
func TestEDFPriorityOrdering(t *testing.T) {
	g := &appmodel.APG{
		Bench: "edf",
		Tasks: []appmodel.Task{
			{ID: 0, Activity: pdn.High, WorkCycles: 100}, // feeds a long chain
			{ID: 1, Activity: pdn.High, WorkCycles: 100}, // independent
			{ID: 2, Activity: pdn.High, WorkCycles: 500},
		},
		Edges: []appmodel.Edge{{Src: 0, Dst: 2, Volume: 160}},
	}
	res, err := Schedule(g, Config{Freq: 1e9, Cores: 1, AppDeadline: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskDeadline[0] >= res.TaskDeadline[1] {
		t.Errorf("task 0 deadline %g not earlier than independent task's %g",
			res.TaskDeadline[0], res.TaskDeadline[1])
	}
	if res.Start[0] > res.Start[1] {
		t.Error("EDF ran the independent task before the chain head")
	}
}

func TestScheduleCheckpointOverhead(t *testing.T) {
	g := chainGraph(3, 1e6)
	plain, err := Schedule(g, Config{Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := Schedule(g, Config{Freq: 1e9, Checkpointing: true})
	if err != nil {
		t.Fatal(err)
	}
	wantFactor := 1 + CheckpointOverheadFrac(1e9)
	if math.Abs(ckpt.Makespan/plain.Makespan-wantFactor) > 1e-9 {
		t.Errorf("checkpoint factor = %g, want %g", ckpt.Makespan/plain.Makespan, wantFactor)
	}
}

func TestScheduleSyncOverhead(t *testing.T) {
	g := chainGraph(2, 1000)
	res, err := Schedule(g, Config{Freq: 1e9, SyncCyclesPerTask: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3000e-9) > 1e-15 {
		t.Errorf("makespan with sync = %g, want 3000ns", res.Makespan)
	}
}

func TestScheduleErrors(t *testing.T) {
	g := chainGraph(2, 100)
	if _, err := Schedule(g, Config{Freq: 0}); err == nil {
		t.Error("zero frequency accepted")
	}
	bad := chainGraph(2, 100)
	bad.Edges[0].Src, bad.Edges[0].Dst = 1, 0
	if _, err := Schedule(bad, Config{Freq: 1e9}); err == nil {
		t.Error("invalid graph accepted")
	}
}

// Property: makespan never decreases when a uniform comm delay is added.
func TestMakespanMonotoneInDelay(t *testing.T) {
	bench := appmodel.Benchmarks()[0]
	g := bench.Graph(16)
	f := func(dRaw uint8) bool {
		d := float64(dRaw) * 1e-9
		r0, err0 := Schedule(g, Config{Freq: 1e9})
		r1, err1 := Schedule(g, Config{Freq: 1e9, Delay: func(appmodel.Edge) float64 { return d }})
		return err0 == nil && err1 == nil && r1.Makespan >= r0.Makespan-1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: fewer cores never shortens the schedule.
func TestMakespanMonotoneInCores(t *testing.T) {
	g := appmodel.Benchmarks()[3].Graph(16)
	prev := math.Inf(1)
	for _, cores := range []int{1, 2, 4, 8, 16} {
		res, err := Schedule(g, Config{Freq: 1e9, Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > prev+1e-18 {
			t.Fatalf("makespan grew from %d cores", cores)
		}
		prev = res.Makespan
	}
}

func TestConstants(t *testing.T) {
	if RollbackPenalty(1e9) <= CheckpointPeriod/2 {
		t.Error("rollback penalty missing restart overhead")
	}
	if RollbackPenalty(0) != 0 || CheckpointOverheadFrac(0) != 0 {
		t.Error("zero frequency not handled")
	}
	// Checkpoint overhead at 1 GHz: 256 cycles per 1 ms = 0.0256%.
	if f := CheckpointOverheadFrac(1e9); math.Abs(f-256e-6) > 1e-12 {
		t.Errorf("checkpoint overhead = %g", f)
	}
}
