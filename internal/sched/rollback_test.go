package sched

import (
	"math"
	"testing"
)

func TestFaultPlanDeterministic(t *testing.T) {
	a, b := NewFaultPlan(7), NewFaultPlan(7)
	for i := 0; i < 200; i++ {
		e := float64(i%5) * 0.1
		if na, nb := a.Draw(e), b.Draw(e); na != nb {
			t.Fatalf("draw %d diverged: %d vs %d", i, na, nb)
		}
	}
}

func TestFaultPlanZeroExceedance(t *testing.T) {
	p := NewFaultPlan(1)
	if n := p.Draw(0); n != 0 {
		t.Errorf("Draw(0) = %d", n)
	}
	if n := p.Draw(-0.5); n != 0 {
		t.Errorf("Draw(-0.5) = %d", n)
	}
	// Zero-exceedance draws consume no randomness: the stream continues as
	// if they never happened.
	q := NewFaultPlan(1)
	p.Draw(0)
	if a, b := p.Draw(0.3), q.Draw(0.3); a != b {
		t.Errorf("zero draw consumed randomness: %d vs %d", a, b)
	}
}

func TestFaultPlanMeanTracksExceedance(t *testing.T) {
	p := NewFaultPlan(99)
	const trials = 20000
	mean := func(e float64) float64 {
		sum := 0
		for i := 0; i < trials; i++ {
			sum += p.Draw(e)
		}
		return float64(sum) / trials
	}
	lo, hi := mean(0.1), mean(1.0)
	// Poisson means 1.8 and 9; allow generous sampling slack.
	if math.Abs(lo-1.8) > 0.15 {
		t.Errorf("mean at exceedance 0.1 = %g, want ~1.8", lo)
	}
	if math.Abs(hi-9) > 0.4 {
		t.Errorf("mean at exceedance 1.0 = %g, want ~9", hi)
	}
}

func TestFaultPlanDrawBounded(t *testing.T) {
	p := NewFaultPlan(3)
	for i := 0; i < 1000; i++ {
		if n := p.Draw(100); n < 0 || n > faultDrawCap {
			t.Fatalf("draw %d out of bounds", n)
		}
	}
}

func TestExecutorStraightThrough(t *testing.T) {
	// No emergencies: completion is start + makespan and every checkpoint
	// in the span is taken.
	const freq, makespan = 1e9, 10.5e-3
	x := NewExecutor(freq, makespan, 2.0)
	if got := x.CompletionTime(); math.Abs(got-2.0-makespan) > 1e-12 {
		t.Errorf("completion = %g, want %g", got, 2.0+makespan)
	}
	period := CheckpointPeriod * (1 + CheckpointOverheadFrac(freq))
	want := int(makespan / period)
	if got := x.Checkpoints(); got != want {
		t.Errorf("checkpoints = %d, want %d", got, want)
	}
	if x.Rollbacks() != 0 || x.DelayS() != 0 {
		t.Errorf("clean run has rollbacks=%d delay=%g", x.Rollbacks(), x.DelayS())
	}
}

func TestExecutorRollbackAccounting(t *testing.T) {
	const freq = 1e9
	period := CheckpointPeriod * (1 + CheckpointOverheadFrac(freq))
	restart := RollbackCycles / freq
	makespan := 10 * period
	x := NewExecutor(freq, makespan, 0)

	// One VE at 2.5 checkpoint periods of progress: the watermark is 2
	// periods, half a period of work is lost, one restart is paid.
	now := 2.5 * period
	got := x.InjectVEs(now, 1)
	want := now + restart + (makespan - 2*period)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("completion after VE = %g, want %g", got, want)
	}
	if x.Rollbacks() != 1 {
		t.Errorf("rollbacks = %d", x.Rollbacks())
	}
	if math.Abs(x.LostWorkS()-0.5*period) > 1e-12 {
		t.Errorf("lost work = %g, want %g", x.LostWorkS(), 0.5*period)
	}
	if math.Abs(x.RestartS()-restart) > 1e-12 {
		t.Errorf("restart overhead = %g, want %g", x.RestartS(), restart)
	}
	if math.Abs(x.DelayS()-(0.5*period+restart)) > 1e-12 {
		t.Errorf("delay = %g", x.DelayS())
	}
}

func TestExecutorBatchedVEs(t *testing.T) {
	// n emergencies in one batch: the lost work is paid once, the restart
	// overhead n times.
	const freq = 1e9
	period := CheckpointPeriod * (1 + CheckpointOverheadFrac(freq))
	restart := RollbackCycles / freq
	makespan := 10 * period
	x := NewExecutor(freq, makespan, 0)
	now := 1.25 * period
	got := x.InjectVEs(now, 3)
	want := now + 3*restart + (makespan - period)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("completion = %g, want %g", got, want)
	}
	if x.Rollbacks() != 3 {
		t.Errorf("rollbacks = %d", x.Rollbacks())
	}
	if math.Abs(x.RestartS()-3*restart) > 1e-12 {
		t.Errorf("restart overhead = %g", x.RestartS())
	}
}

func TestExecutorNeverRollsBackPastCommit(t *testing.T) {
	const freq = 1e9
	period := CheckpointPeriod * (1 + CheckpointOverheadFrac(freq))
	makespan := 10 * period
	x := NewExecutor(freq, makespan, 0)
	// First VE commits the watermark at 3 periods.
	x.InjectVEs(3.5*period, 1)
	c1 := x.CompletionTime()
	// A second VE immediately after the restart has no new progress: no
	// extra work is lost, the completion slips by exactly one restart.
	c2 := x.InjectVEs(x.attemptStart, 1)
	if math.Abs(c2-c1-RollbackCycles/freq) > 1e-12 {
		t.Errorf("idle-point VE cost %g, want one restart %g", c2-c1, RollbackCycles/freq)
	}
	if x.committed < 3*period-1e-12 {
		t.Errorf("watermark regressed to %g", x.committed)
	}
}

func TestExecutorVEAfterProjectedCompletion(t *testing.T) {
	// A stale sample striking after the projected completion caps progress
	// at total: the final span past the last checkpoint is re-run.
	const freq = 1e9
	period := CheckpointPeriod * (1 + CheckpointOverheadFrac(freq))
	restart := RollbackCycles / freq
	makespan := 2.5 * period
	x := NewExecutor(freq, makespan, 0)
	got := x.InjectVEs(10*period, 1)
	want := 10*period + restart + 0.5*period
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("completion = %g, want %g", got, want)
	}
}

func TestExecutorDegenerate(t *testing.T) {
	x := NewExecutor(0, 0.01, 5)
	// No frequency: no checkpoints, no restart cost; VEs re-run from the
	// start watermark but cost nothing extra in restart overhead.
	if x.Checkpoints() != 0 {
		t.Errorf("checkpoints = %d", x.Checkpoints())
	}
	ct := x.InjectVEs(5.005, 2)
	if math.IsNaN(ct) || math.IsInf(ct, 0) {
		t.Errorf("completion = %g", ct)
	}
	y := NewExecutor(1e9, -1, 0)
	if y.CompletionTime() != 0 {
		t.Errorf("negative makespan completion = %g", y.CompletionTime())
	}
}

// The closed-form penalty is the expectation of the explicit model: over a
// uniform distribution of VE arrival phase within a checkpoint interval,
// the mean lost work is half an interval and each VE pays one restart.
func TestExecutorMatchesClosedFormInExpectation(t *testing.T) {
	const freq = 1e9
	period := CheckpointPeriod * (1 + CheckpointOverheadFrac(freq))
	makespan := 100 * period
	const n = 1000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := NewExecutor(freq, makespan, 0)
		phase := (float64(i) + 0.5) / n // uniform in (0,1)
		x.InjectVEs((3+phase)*period, 1)
		sum += x.DelayS()
	}
	mean := sum / n
	// RollbackPenalty uses the *uninflated* half interval; the explicit
	// model loses inflated time, so allow the overhead-fraction gap.
	closed := RollbackPenalty(freq)
	if math.Abs(mean-closed) > closed*0.01 {
		t.Errorf("mean explicit delay %g vs closed form %g", mean, closed)
	}
}
