// Package sched schedules an application's task graph onto its mapped
// cores with earliest-deadline-first (EDF) priorities, and models the
// checkpoint/rollback fault-tolerance scheme the paper uses to recover
// from voltage emergencies (§4.2, §4.5).
//
// Task deadlines (priorities) are derived from the application deadline by
// a backward pass over the APG, following the task-graph scheduling
// technique of the authors' prior work ([23]). With PARM's one-task-per-
// core mapping the schedule is work-conserving list scheduling; the package
// also supports fewer cores than tasks, where EDF ordering matters.
package sched

import (
	"container/heap"
	"fmt"
	"math"

	"parm/internal/appmodel"
)

// Checkpoint/rollback constants from paper §5.1.
const (
	// CheckpointPeriod is the interval between checkpoints in seconds.
	CheckpointPeriod = 1e-3
	// CheckpointCycles is the overhead of taking one checkpoint.
	CheckpointCycles = 256
	// RollbackCycles is the restart overhead after a voltage emergency.
	RollbackCycles = 10000
)

// CheckpointOverheadFrac returns the fractional execution-time overhead of
// periodic checkpointing at clock frequency f.
func CheckpointOverheadFrac(f float64) float64 {
	if f <= 0 {
		return 0
	}
	return CheckpointCycles / (CheckpointPeriod * f)
}

// RollbackPenalty returns the expected lost time per voltage emergency at
// clock frequency f: the restart overhead plus re-execution of half a
// checkpoint interval on average.
func RollbackPenalty(f float64) float64 {
	if f <= 0 {
		return 0
	}
	return RollbackCycles/f + CheckpointPeriod/2
}

// CommDelay returns the serialized transfer time in seconds of one APG
// edge, as measured by the NoC model for the edge's mapped flow. A nil
// CommDelay means zero-cost communication.
type CommDelay func(e appmodel.Edge) float64

// Config parameterizes one schedule computation.
type Config struct {
	// Freq is the core clock frequency in Hz (all of an application's
	// cores share one Vdd, hence one frequency).
	Freq float64
	// Cores is the number of cores available. Zero means one per task.
	Cores int
	// Delay supplies per-edge communication delays; nil means zero.
	Delay CommDelay
	// Checkpointing inflates compute times by the periodic checkpoint
	// overhead when true.
	Checkpointing bool
	// SyncCyclesPerTask adds per-task barrier overhead in cycles, matching
	// the profile model (appmodel.Benchmark.SyncCyclesPerTask).
	SyncCyclesPerTask float64
	// AppDeadline is the application's relative deadline in seconds, used
	// for the backward priority pass. Zero derives priorities from the
	// graph structure alone.
	AppDeadline float64
}

// Result is a computed schedule.
type Result struct {
	// Makespan is the completion time of the last task in seconds.
	Makespan float64
	// Start and Finish give per-task times in seconds.
	Start, Finish []float64
	// TaskDeadline holds the EDF priority (derived deadline) per task.
	TaskDeadline []float64
}

// Schedule computes an EDF list schedule of g under cfg. It returns an
// error when the frequency is non-positive or the graph is invalid.
func Schedule(g *appmodel.APG, cfg Config) (*Result, error) {
	if cfg.Freq <= 0 {
		return nil, fmt.Errorf("sched: non-positive frequency %g", cfg.Freq)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.NumTasks()
	cores := cfg.Cores
	if cores <= 0 {
		cores = n
	}

	exec := make([]float64, n)
	over := 1.0
	if cfg.Checkpointing {
		over += CheckpointOverheadFrac(cfg.Freq)
	}
	for i, t := range g.Tasks {
		exec[i] = (t.WorkCycles + cfg.SyncCyclesPerTask) / cfg.Freq * over
	}
	delay := func(e appmodel.Edge) float64 {
		if cfg.Delay == nil {
			return 0
		}
		d := cfg.Delay(e)
		if d < 0 {
			return 0
		}
		return d
	}

	// Adjacency and in-degrees.
	succ := make([][]appmodel.Edge, n)
	pred := make([][]appmodel.Edge, n)
	for _, e := range g.Edges {
		succ[e.Src] = append(succ[e.Src], e)
		pred[e.Dst] = append(pred[e.Dst], e)
	}

	// Backward pass: derive task deadlines from the application deadline
	// ([23]): a task must finish early enough for every successor chain.
	dl := make([]float64, n)
	appDL := cfg.AppDeadline
	if appDL <= 0 {
		// Use the graph span as a neutral reference.
		appDL = 0
		for i := range exec {
			appDL += exec[i]
		}
	}
	for i := range dl {
		dl[i] = appDL
	}
	// Edges are topologically ordered (Src < Dst), so one reverse sweep
	// over tasks suffices.
	for i := n - 1; i >= 0; i-- {
		for _, e := range succ[i] {
			cand := dl[e.Dst] - exec[e.Dst] - delay(e)
			if cand < dl[i] {
				dl[i] = cand
			}
		}
	}

	// EDF list scheduling on `cores` identical cores.
	res := &Result{
		Start:        make([]float64, n),
		Finish:       make([]float64, n),
		TaskDeadline: dl,
	}
	ready := make([]float64, n) // earliest data-ready time
	inDeg := make([]int, n)
	for i := range inDeg {
		inDeg[i] = len(pred[i])
	}

	// Core availability as a min-heap of free times.
	coreFree := make(floatHeap, cores)
	heap.Init(&coreFree)

	// Ready queue ordered by (deadline, id).
	rq := &taskHeap{dl: dl}
	for i := 0; i < n; i++ {
		if inDeg[i] == 0 {
			heap.Push(rq, i)
		}
	}
	scheduled := 0
	for rq.Len() > 0 {
		t := heap.Pop(rq).(int)
		core := heap.Pop(&coreFree).(float64)
		start := math.Max(core, ready[t])
		finish := start + exec[t]
		res.Start[t], res.Finish[t] = start, finish
		heap.Push(&coreFree, finish)
		if finish > res.Makespan {
			res.Makespan = finish
		}
		scheduled++
		for _, e := range succ[t] {
			arr := finish + delay(e)
			if arr > ready[e.Dst] {
				ready[e.Dst] = arr
			}
			inDeg[e.Dst]--
			if inDeg[e.Dst] == 0 {
				heap.Push(rq, int(e.Dst))
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("sched: scheduled %d of %d tasks (cyclic graph?)", scheduled, n)
	}
	return res, nil
}

// floatHeap is a min-heap of core free times.
type floatHeap []float64

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// taskHeap orders ready tasks by derived deadline, then ID.
type taskHeap struct {
	ids []int
	dl  []float64
}

func (h taskHeap) Len() int { return len(h.ids) }
func (h taskHeap) Less(i, j int) bool {
	a, b := h.ids[i], h.ids[j]
	if h.dl[a] < h.dl[b] {
		return true
	}
	if h.dl[a] > h.dl[b] {
		return false
	}
	return a < b
}
func (h taskHeap) Swap(i, j int)       { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *taskHeap) Push(x interface{}) { h.ids = append(h.ids, x.(int)) }
func (h *taskHeap) Pop() interface{} {
	old := h.ids
	n := len(old)
	v := old[n-1]
	h.ids = old[:n-1]
	return v
}
